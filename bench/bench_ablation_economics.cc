/**
 * @file
 * Ablation: economic sensitivity.  Sweeps the mask-set price anchor,
 * the wafer defect density (yield) and the update cadence to show
 * where the paper's cost conclusions are robust and where they bend
 * (paper Sections 7.5 / 8).
 */

#include "bench_util.hh"
#include "econ/tco.hh"
#include "model/model_zoo.hh"

int
main()
{
    using namespace hnlpu;
    const auto model = gptOss120b();

    bench::banner("Ablation: mask-set price anchor");
    Table masks_t({"Full-set price", "Initial NRE (mid)",
                   "Re-spin (mid)", "TCO advantage vs H100 (high vol)"});
    for (double set_m : {10.0, 15.0, 22.5, 30.0, 45.0}) {
        MaskStack masks;
        masks.fullSetPrice = {set_m * 1e6, set_m * 1e6};
        TcoModel tco(HnlpuCostModel(n5Technology(), masks));
        const auto hn = tco.hnlpu(model, 50);
        const auto gpu = tco.h100(100000.0);
        const auto bd =
            HnlpuCostModel(n5Technology(), masks).breakdown(model);
        masks_t.addRow({
            dollarString(set_m * 1e6),
            dollarString(bd.totalNre().mid()),
            dollarString(bd.respin(1).mid()),
            ratioString(gpu.tcoStatic.mid() / hn.tcoDynamic.mid(), 1),
        });
    }
    masks_t.print();

    bench::banner("Ablation: defect density (yield) sweep");
    Table yield_t({"Defects/cm^2", "Yield @827mm^2", "Good dies/wafer",
                   "$ per good die"});
    for (double d0 : {0.05, 0.11, 0.2, 0.5, 1.0}) {
        TechnologyParams tech = n5Technology();
        tech.defectDensityPerCm2 = d0;
        WaferModel wafers(tech);
        const auto e = wafers.economics(827.08);
        yield_t.addRow({commaString(d0, 2),
                        percentString(e.yield),
                        commaString(e.goodDiesPerWafer),
                        dollarString(e.costPerGoodDie, 3)});
    }
    yield_t.print();
    std::printf("\nPaper Section 8: even 1%% yield only adds ~$0.5M / "
                "$22M to low/high-volume CapEx --\nyield is a "
                "secondary factor for HNLPU because volumes are tiny.\n");

    bench::banner("Ablation: weight-update cadence over 3 years");
    TcoModel tco(HnlpuCostModel(n5Technology(), MaskStack{}));
    const auto gpu = tco.h100(100000.0);
    Table cadence({"Re-spins in 3y", "HNLPU TCO (mid)",
                   "Advantage vs H100"});
    const auto hn = tco.hnlpu(model, 50);
    for (int respins : {0, 1, 2, 4, 8}) {
        const CostRange tco_total =
            hn.tcoStatic + hn.respinCost * double(respins);
        cadence.addRow({
            std::to_string(respins),
            dollarString(tco_total.mid()),
            ratioString(gpu.tcoStatic.mid() / tco_total.mid(), 1),
        });
    }
    cadence.print();
    return 0;
}
