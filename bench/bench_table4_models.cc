/**
 * @file
 * Reproduces paper Table 4: initial chip-NRE estimates for hardwiring
 * LLMs other than gpt-oss (Kimi-K2, DeepSeek-V3, QwQ-32B, Llama-3 8B).
 * The paper does not specify its derivation; we use the documented
 * fixed-masks + per-chip-ME-masks + design-scaling model (see
 * DESIGN.md) and report the residual against the published figures.
 */

#include "bench_util.hh"
#include "econ/nre.hh"
#include "model/model_zoo.hh"

int
main()
{
    using namespace hnlpu;

    bench::banner("Table 4: Chip NRE for various models");

    HnlpuCostModel cost(n5Technology(), MaskStack{});
    struct Entry { TransformerConfig cfg; double paper_m; };
    const Entry entries[] = {
        {kimiK2(), 462.0},
        {deepSeekV3(), 353.0},
        {qwq32b(), 69.0},
        {llama3_8b(), 38.0},
        {gptOss120b(), 0.0}, // reference row, Table 5 anchor
    };

    Table table({"Model", "Params", "Chips", "NRE (range)",
                 "NRE (mid)", "Paper", "Deviation"});
    for (const auto &e : entries) {
        const auto bd = cost.breakdown(e.cfg);
        const auto nre = bd.totalNre();
        table.addRow({
            e.cfg.name,
            siString(double(e.cfg.totalParams()), "", 3),
            std::to_string(bd.chipCount),
            dollarString(nre.lo) + " ~ " + dollarString(nre.hi),
            dollarString(nre.mid()),
            e.paper_m > 0 ? dollarString(e.paper_m * 1e6) : "(Table 5)",
            e.paper_m > 0 ? bench::deviation(nre.mid(), e.paper_m * 1e6)
                          : "-",
        });
    }
    table.print();

    std::printf("\nScaling behaviour: the shared homogeneous mask set "
                "(%s) is constant; the\nME masks grow by %s per chip; "
                "design & development scales ~sqrt(chips/16).\n",
                dollarString(cost.masks().homogeneousCost().mid())
                    .c_str(),
                dollarString(
                    cost.masks().metalEmbeddingCostPerChip().mid())
                    .c_str());
    return 0;
}
