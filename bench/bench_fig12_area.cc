/**
 * @file
 * Reproduces paper Fig. 12: post-layout area comparison of the three
 * embedding methodologies on the 1x1024 by 1024x128 FP4 GEMV operator
 * (Cell-Embedding vs. the MA baseline's 64 KB weight SRAM vs.
 * Metal-Embedding).  Also microbenchmarks the functional models with
 * google-benchmark to show the simulators themselves are usable at
 * interactive speed.
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"
#include "common/rng.hh"
#include "hn/ce_neuron.hh"
#include "hn/hn_array.hh"
#include "phys/energy_model.hh"

namespace {

using namespace hnlpu;

void
printFigure12()
{
    bench::banner("Figure 12: Embedding-methodology area comparison "
                  "(1024 x 128 FP4 GEMV)");
    AreaModel area(n5Technology());
    const OperatorShape shape;
    const double weights = shape.weightCount();

    const AreaMm2 sram = area.sramWeightStore(weights);
    const AreaMm2 ce = area.cellEmbedding(weights);
    const AreaMm2 me = area.metalEmbedding(weights);

    Table table({"Methodology", "Area (mm^2)", "Relative",
                 "Paper (rel.)", "Deviation"});
    table.addRow({"Cell-Embedding (CE)", commaString(ce, 4) + " mm^2",
                  ratioString(ce / sram, 2), "14.3x",
                  bench::deviation(ce / sram, 14.3)});
    table.addRow({"64 KB SRAM (MA)", commaString(sram, 4) + " mm^2", "1.00x",
                  "1x", "+0.0%"});
    table.addRow({"Metal-Embedding (ME)", commaString(me, 4) + " mm^2",
                  ratioString(me / sram, 2), "0.95x",
                  bench::deviation(me / sram, 0.95)});
    table.print();
    std::printf("\nME density gain over CE: %s (paper: ~15x)\n",
                ratioString(area.meDensityGain(), 1).c_str());
}

/** Functional-model microbenchmark: bit-serial HN GEMV. */
void
BM_HnGemvSerial(benchmark::State &state)
{
    const std::size_t in_dim = 1024, out_dim = 128;
    auto weights = syntheticFp4Weights(in_dim * out_dim, 1);
    SeaOfNeuronsTemplate tmpl;
    tmpl.inputCount = in_dim;
    tmpl.slackFactor = 4.0;
    HnArray array(tmpl, weights, out_dim, in_dim);

    Rng rng(2);
    std::vector<std::int64_t> x(in_dim);
    for (auto &v : x)
        v = rng.uniformInt(-127, 127);

    for (auto _ : state) {
        auto out = array.gemvSerial(x, 8);
        benchmark::DoNotOptimize(out);
    }
    state.SetItemsProcessed(state.iterations() * in_dim * out_dim);
}
BENCHMARK(BM_HnGemvSerial);

/** Functional-model microbenchmark: cell-embedded reference. */
void
BM_CeGemv(benchmark::State &state)
{
    const std::size_t in_dim = 1024, out_dim = 128;
    auto weights = syntheticFp4Weights(in_dim * out_dim, 1);
    std::vector<CellEmbeddedNeuron> neurons;
    for (std::size_t r = 0; r < out_dim; ++r) {
        neurons.emplace_back(std::vector<Fp4>(
            weights.begin() + r * in_dim,
            weights.begin() + (r + 1) * in_dim));
    }
    Rng rng(2);
    std::vector<std::int64_t> x(in_dim);
    for (auto &v : x)
        v = rng.uniformInt(-127, 127);

    for (auto _ : state) {
        std::int64_t acc = 0;
        for (const auto &n : neurons)
            acc += n.compute(x);
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(state.iterations() * in_dim * out_dim);
}
BENCHMARK(BM_CeGemv);

} // namespace

int
main(int argc, char **argv)
{
    printFigure12();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
