/**
 * @file
 * Host-side decode throughput of the functional engine across thread
 * counts (ExecOptions{threads} -> ThreadPool -> row/expert/head
 * parallelism).
 *
 * Runs a scaled gpt-oss-shaped block (same head/expert structure as
 * gpt-oss 120 B, dimensions shrunk ~10x so the functional simulation
 * fits a laptop) through a prefill + autoregressive decode loop and
 * reports tokens/s at 1/2/4/8 threads for the reference float path
 * and the bit-serial hardwired path.  Because the parallel layer is
 * bit-exact, every row of the table computes the same tokens -- only
 * the wall clock changes.
 *
 * Usage: bench_throughput [decode_steps_ref] [decode_steps_hw]
 */

#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hh"
#include "common/thread_pool.hh"
#include "xformer/engine.hh"
#include "xformer/sampler.hh"
#include "xformer/weights.hh"

namespace {

using namespace hnlpu;

/** gpt-oss-shaped block at ~1/10 linear scale (see file comment). */
TransformerConfig
scaledGptOssBlock()
{
    TransformerConfig cfg;
    cfg.name = "gpt-oss-scaled-block";
    cfg.hiddenSize = 288;  // 2880 / 10
    cfg.layerCount = 1;
    cfg.queryHeads = 8;
    cfg.kvHeads = 2;       // GQA group of 4, ratio as in gpt-oss
    cfg.headDim = 36;
    cfg.vocabSize = 2048;
    cfg.expertCount = 8;
    cfg.activeExperts = 2;
    cfg.expertHidden = 288;
    cfg.weightBits = 4;
    cfg.validate();
    return cfg;
}

struct Measurement
{
    std::size_t threads;
    double tokensPerSecond;
};

Measurement
measure(const TransformerConfig &cfg, const ModelWeights &weights,
        ExecPath path, std::size_t threads, std::size_t decode_steps)
{
    Engine engine(cfg, weights, path, 8, ExecOptions{threads});
    Sampler greedy(SamplerConfig{}, 1);
    const std::vector<std::size_t> prompt{7, 301, 42, 1999};

    const auto start = std::chrono::steady_clock::now();
    engine.generate(prompt, decode_steps, greedy);
    const auto stop = std::chrono::steady_clock::now();

    const double seconds =
        std::chrono::duration<double>(stop - start).count();
    const double tokens =
        static_cast<double>(prompt.size() + decode_steps);
    return {threads, tokens / seconds};
}

void
reportPath(const char *title, const TransformerConfig &cfg,
           const ModelWeights &weights, ExecPath path,
           std::size_t decode_steps)
{
    bench::banner(title);
    Table table({"Threads", "Tokens/s", "Speedup vs 1T"});
    double base = 0.0;
    for (std::size_t threads : {1u, 2u, 4u, 8u}) {
        const Measurement m =
            measure(cfg, weights, path, threads, decode_steps);
        if (threads == 1)
            base = m.tokensPerSecond;
        table.addRow({std::to_string(m.threads),
                      commaString(m.tokensPerSecond, 2),
                      commaString(m.tokensPerSecond / base, 2) + "x"});
    }
    table.print();
    std::printf("(hardware concurrency: %u)\n",
                std::thread::hardware_concurrency());
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace hnlpu;

    const std::size_t decode_ref =
        argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 48;
    const std::size_t decode_hw =
        argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 8;

    const TransformerConfig cfg = scaledGptOssBlock();
    bench::banner("Decode throughput vs thread count (" + cfg.name +
                  ")");
    std::printf("hidden %zu, %zu experts (top-%zu), %zu query heads, "
                "vocab %zu\n",
                cfg.hiddenSize, cfg.expertCount, cfg.activeExperts,
                cfg.queryHeads, cfg.vocabSize);

    const ModelWeights weights = ModelWeights::randomInit(cfg, 7);

    reportPath("Reference path (float GEMV)", cfg, weights,
               ExecPath::Reference, decode_ref);
    reportPath("Hardwired path (bit-serial HN arrays)", cfg, weights,
               ExecPath::Hardwired, decode_hw);
    return 0;
}
