/**
 * @file
 * Host-side decode throughput of the functional engine across thread
 * counts and HN GEMV kernels (ExecOptions{threads, kernel}).
 *
 * Runs a scaled gpt-oss-shaped block (same head/expert structure as
 * gpt-oss 120 B, dimensions shrunk ~10x so the functional simulation
 * fits a laptop) through a prefill + autoregressive decode loop and
 * reports tokens/s at 1/2/4/8 threads for:
 *
 *  - the reference float path,
 *  - the hardwired path with the Scalar (per-wire emulation) kernel,
 *  - the hardwired path with the Packed (word-parallel popcount)
 *    kernel.
 *
 * Because both the parallel layer and the Packed kernel are bit-exact,
 * every row of the tables computes the same tokens -- only the wall
 * clock changes.  All measurements are also written to
 * BENCH_throughput.json (machine readable, for trajectory tracking).
 *
 * Usage: bench_throughput [decode_steps_ref] [decode_steps_hw] [json]
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hh"
#include "common/thread_pool.hh"
#include "xformer/engine.hh"
#include "xformer/sampler.hh"
#include "xformer/weights.hh"

namespace {

using namespace hnlpu;

/** gpt-oss-shaped block at ~1/10 linear scale (see file comment). */
TransformerConfig
scaledGptOssBlock()
{
    TransformerConfig cfg;
    cfg.name = "gpt-oss-scaled-block";
    cfg.hiddenSize = 288;  // 2880 / 10
    cfg.layerCount = 1;
    cfg.queryHeads = 8;
    cfg.kvHeads = 2;       // GQA group of 4, ratio as in gpt-oss
    cfg.headDim = 36;
    cfg.vocabSize = 2048;
    cfg.expertCount = 8;
    cfg.activeExperts = 2;
    cfg.expertHidden = 288;
    cfg.weightBits = 4;
    cfg.validate();
    return cfg;
}

struct Measurement
{
    std::string path;
    std::string kernel;
    std::size_t threads;
    double tokensPerSecond;
};

Measurement
measure(const TransformerConfig &cfg, const ModelWeights &weights,
        ExecPath path, HnKernel kernel, std::size_t threads,
        std::size_t decode_steps)
{
    ExecOptions exec;
    exec.threads = threads;
    exec.kernel = kernel;
    Engine engine(cfg, weights, path, 8, exec);
    Sampler greedy(SamplerConfig{}, 1);
    const std::vector<std::size_t> prompt{7, 301, 42, 1999};

    const auto start = std::chrono::steady_clock::now();
    engine.generate(prompt, decode_steps, greedy);
    const auto stop = std::chrono::steady_clock::now();

    const double seconds =
        std::chrono::duration<double>(stop - start).count();
    const double tokens =
        static_cast<double>(prompt.size() + decode_steps);
    Measurement m;
    m.path = path == ExecPath::Reference ? "reference" : "hardwired";
    m.kernel = kernel == HnKernel::Scalar ? "scalar" : "packed";
    m.threads = threads;
    m.tokensPerSecond = tokens / seconds;
    return m;
}

std::vector<Measurement>
reportPath(const char *title, const TransformerConfig &cfg,
           const ModelWeights &weights, ExecPath path, HnKernel kernel,
           std::size_t decode_steps)
{
    bench::banner(title);
    Table table({"Threads", "Tokens/s", "Speedup vs 1T"});
    std::vector<Measurement> measurements;
    double base = 0.0;
    for (std::size_t threads : {1u, 2u, 4u, 8u}) {
        const Measurement m =
            measure(cfg, weights, path, kernel, threads, decode_steps);
        if (threads == 1)
            base = m.tokensPerSecond;
        table.addRow({std::to_string(m.threads),
                      commaString(m.tokensPerSecond, 2),
                      commaString(m.tokensPerSecond / base, 2) + "x"});
        measurements.push_back(m);
    }
    table.print();
    std::printf("(hardware concurrency: %u)\n",
                std::thread::hardware_concurrency());
    return measurements;
}

void
writeJson(const std::string &json_path, const TransformerConfig &cfg,
          const std::vector<Measurement> &measurements)
{
    obs::JsonWriter w(2);
    w.beginObject();
    w.field("model", cfg.name);
    w.key("configs").beginArray();
    for (const Measurement &m : measurements) {
        w.beginObject()
            .field("path", m.path)
            .field("kernel", m.kernel)
            .field("threads", m.threads)
            .field("tokens_per_s", m.tokensPerSecond)
            .endObject();
    }
    w.endArray();
    w.endObject();
    bench::writeJsonFile(json_path, w,
                         std::to_string(measurements.size()) +
                             " configs");
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace hnlpu;

    const std::size_t decode_ref =
        argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 48;
    const std::size_t decode_hw =
        argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 8;
    const std::string json_path =
        argc > 3 ? argv[3] : "BENCH_throughput.json";

    const TransformerConfig cfg = scaledGptOssBlock();
    bench::banner("Decode throughput vs thread count and kernel (" +
                  cfg.name + ")");
    std::printf("hidden %zu, %zu experts (top-%zu), %zu query heads, "
                "vocab %zu\n",
                cfg.hiddenSize, cfg.expertCount, cfg.activeExperts,
                cfg.queryHeads, cfg.vocabSize);

    const ModelWeights weights = ModelWeights::randomInit(cfg, 7);

    std::vector<Measurement> all;
    auto append = [&all](const std::vector<Measurement> &ms) {
        all.insert(all.end(), ms.begin(), ms.end());
    };
    append(reportPath("Reference path (float GEMV)", cfg, weights,
                      ExecPath::Reference, HnKernel::Packed,
                      decode_ref));
    append(reportPath("Hardwired path, Scalar kernel (per-wire "
                      "emulation)",
                      cfg, weights, ExecPath::Hardwired,
                      HnKernel::Scalar, decode_hw));
    append(reportPath("Hardwired path, Packed kernel (word-parallel "
                      "popcount)",
                      cfg, weights, ExecPath::Hardwired,
                      HnKernel::Packed, decode_hw));

    // Packed-vs-Scalar speedup at equal thread count (the tentpole
    // acceptance metric).
    bench::banner("Packed kernel speedup over Scalar (hardwired path)");
    Table speedup({"Threads", "Scalar tok/s", "Packed tok/s", "Speedup"});
    for (std::size_t t = 0; t < 4; ++t) {
        const Measurement &scalar = all[4 + t];
        const Measurement &packed = all[8 + t];
        speedup.addRow(
            {std::to_string(scalar.threads),
             commaString(scalar.tokensPerSecond, 2),
             commaString(packed.tokensPerSecond, 2),
             commaString(packed.tokensPerSecond /
                         scalar.tokensPerSecond, 2) + "x"});
    }
    speedup.print();

    writeJson(json_path, cfg, all);
    return 0;
}
