/**
 * @file
 * Host-side decode throughput of the functional engine across thread
 * counts and HN GEMV kernels (ExecOptions{threads, kernel}).
 *
 * Runs a scaled gpt-oss-shaped block (same head/expert structure as
 * gpt-oss 120 B, dimensions shrunk ~10x so the functional simulation
 * fits a laptop) through a prefill + autoregressive decode loop and
 * reports tokens/s at 1/2/4/8 threads for:
 *
 *  - the reference float path,
 *  - the hardwired path with the Scalar (per-wire emulation) kernel,
 *  - the hardwired path with the Packed (word-parallel popcount)
 *    kernel,
 *  - the hardwired path with the Simd (vectorised popcount) kernel.
 *
 * Methodology: every configuration is measured kReps times after one
 * untimed warmup generation (first-touch page faults, lazy hardwired
 * programming and branch training land in the warmup); the table and
 * JSON report the MEDIAN of the reps plus the min/max spread, so a
 * single scheduler hiccup cannot masquerade as a regression.  Pool
 * threads are pinned round-robin across the online CPUs
 * (ExecOptions::pinThreads) so the scaling numbers measure the
 * kernels, not thread migration.
 *
 * Because both the parallel layer and the word-parallel kernels are
 * bit-exact, every row of the tables computes the same tokens -- only
 * the wall clock changes.  All measurements are also written to
 * BENCH_throughput.json (machine readable, for trajectory tracking).
 *
 * Usage: bench_throughput [decode_steps_ref] [decode_steps_hw] [json]
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hh"
#include "common/thread_pool.hh"
#include "hn/hn_simd.hh"
#include "xformer/engine.hh"
#include "xformer/sampler.hh"
#include "xformer/weights.hh"

namespace {

using namespace hnlpu;

/** Timed repetitions per configuration (median reported). */
constexpr std::size_t kReps = 3;

/** gpt-oss-shaped block at ~1/10 linear scale (see file comment). */
TransformerConfig
scaledGptOssBlock()
{
    TransformerConfig cfg;
    cfg.name = "gpt-oss-scaled-block";
    cfg.hiddenSize = 288;  // 2880 / 10
    cfg.layerCount = 1;
    cfg.queryHeads = 8;
    cfg.kvHeads = 2;       // GQA group of 4, ratio as in gpt-oss
    cfg.headDim = 36;
    cfg.vocabSize = 2048;
    cfg.expertCount = 8;
    cfg.activeExperts = 2;
    cfg.expertHidden = 288;
    cfg.weightBits = 4;
    cfg.validate();
    return cfg;
}

const char *
kernelName(HnKernel kernel)
{
    switch (kernel) {
    case HnKernel::Scalar: return "scalar";
    case HnKernel::Packed: return "packed";
    case HnKernel::Simd: return "simd";
    }
    return "?";
}

struct Measurement
{
    std::string path;
    std::string kernel;
    std::size_t threads = 0;
    double tokensPerSecond = 0.0; //!< median of the reps
    double tokensPerSecondMin = 0.0;
    double tokensPerSecondMax = 0.0;
};

Measurement
measure(const TransformerConfig &cfg, const ModelWeights &weights,
        ExecPath path, HnKernel kernel, std::size_t threads,
        std::size_t decode_steps)
{
    ExecOptions exec;
    exec.threads = threads;
    exec.kernel = kernel;
    exec.pinThreads = true;
    Engine engine(cfg, weights, path, 8, exec);
    const std::vector<std::size_t> prompt{7, 301, 42, 1999};
    const double tokens =
        static_cast<double>(prompt.size() + decode_steps);

    auto run = [&] {
        // Fresh sampler per rep: every rep decodes the identical token
        // sequence, so the reps time identical work.
        Sampler greedy(SamplerConfig{}, 1);
        const auto start = std::chrono::steady_clock::now();
        engine.generate(prompt, decode_steps, greedy);
        const auto stop = std::chrono::steady_clock::now();
        return tokens /
               std::chrono::duration<double>(stop - start).count();
    };

    run(); // untimed warmup
    std::vector<double> reps(kReps);
    for (double &r : reps)
        r = run();
    std::sort(reps.begin(), reps.end());

    Measurement m;
    m.path = path == ExecPath::Reference ? "reference" : "hardwired";
    m.kernel = kernelName(kernel);
    m.threads = threads;
    m.tokensPerSecond = reps[kReps / 2];
    m.tokensPerSecondMin = reps.front();
    m.tokensPerSecondMax = reps.back();
    return m;
}

std::vector<Measurement>
reportPath(const char *title, const TransformerConfig &cfg,
           const ModelWeights &weights, ExecPath path, HnKernel kernel,
           std::size_t decode_steps)
{
    bench::banner(title);
    Table table({"Threads", "Tokens/s (median)", "Min", "Max",
                 "Speedup vs 1T"});
    std::vector<Measurement> measurements;
    double base = 0.0;
    for (std::size_t threads : {1u, 2u, 4u, 8u}) {
        const Measurement m =
            measure(cfg, weights, path, kernel, threads, decode_steps);
        if (threads == 1)
            base = m.tokensPerSecond;
        table.addRow({std::to_string(m.threads),
                      commaString(m.tokensPerSecond, 2),
                      commaString(m.tokensPerSecondMin, 2),
                      commaString(m.tokensPerSecondMax, 2),
                      commaString(m.tokensPerSecond / base, 2) + "x"});
        measurements.push_back(m);
    }
    table.print();
    std::printf("(hardware concurrency: %u, %zu reps/config, threads "
                "pinned)\n",
                std::thread::hardware_concurrency(), kReps);
    return measurements;
}

void
speedupTable(const char *title, const std::vector<Measurement> &all,
             std::size_t base_off, std::size_t new_off,
             const char *base_name, const char *new_name)
{
    bench::banner(title);
    Table table({"Threads", std::string(base_name) + " tok/s",
                 std::string(new_name) + " tok/s", "Speedup"});
    for (std::size_t t = 0; t < 4; ++t) {
        const Measurement &base = all[base_off + t];
        const Measurement &next = all[new_off + t];
        table.addRow({std::to_string(base.threads),
                      commaString(base.tokensPerSecond, 2),
                      commaString(next.tokensPerSecond, 2),
                      commaString(next.tokensPerSecond /
                                  base.tokensPerSecond, 2) + "x"});
    }
    table.print();
}

void
writeJson(const std::string &json_path, const TransformerConfig &cfg,
          const std::vector<Measurement> &measurements)
{
    obs::JsonWriter w(2);
    w.beginObject();
    w.field("model", cfg.name);
    w.field("reps", kReps);
    w.field("simd_level", hnSimdLevelName());
    w.key("configs").beginArray();
    for (const Measurement &m : measurements) {
        w.beginObject()
            .field("path", m.path)
            .field("kernel", m.kernel)
            .field("threads", m.threads)
            .field("tokens_per_s", m.tokensPerSecond)
            .field("tokens_per_s_min", m.tokensPerSecondMin)
            .field("tokens_per_s_max", m.tokensPerSecondMax)
            .endObject();
    }
    w.endArray();
    w.endObject();
    bench::writeJsonFile(json_path, w,
                         std::to_string(measurements.size()) +
                             " configs");
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace hnlpu;

    const std::size_t decode_ref =
        argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 48;
    const std::size_t decode_hw =
        argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 8;
    const std::string json_path =
        argc > 3 ? argv[3] : "BENCH_throughput.json";

    const TransformerConfig cfg = scaledGptOssBlock();
    bench::banner("Decode throughput vs thread count and kernel (" +
                  cfg.name + ")");
    std::printf("hidden %zu, %zu experts (top-%zu), %zu query heads, "
                "vocab %zu, simd level %s\n",
                cfg.hiddenSize, cfg.expertCount, cfg.activeExperts,
                cfg.queryHeads, cfg.vocabSize, hnSimdLevelName());

    const ModelWeights weights = ModelWeights::randomInit(cfg, 7);

    std::vector<Measurement> all;
    auto append = [&all](const std::vector<Measurement> &ms) {
        all.insert(all.end(), ms.begin(), ms.end());
    };
    append(reportPath("Reference path (float GEMV)", cfg, weights,
                      ExecPath::Reference, HnKernel::Packed,
                      decode_ref));
    append(reportPath("Hardwired path, Scalar kernel (per-wire "
                      "emulation)",
                      cfg, weights, ExecPath::Hardwired,
                      HnKernel::Scalar, decode_hw));
    append(reportPath("Hardwired path, Packed kernel (word-parallel "
                      "popcount)",
                      cfg, weights, ExecPath::Hardwired,
                      HnKernel::Packed, decode_hw));
    append(reportPath("Hardwired path, Simd kernel (vectorised "
                      "popcount)",
                      cfg, weights, ExecPath::Hardwired,
                      HnKernel::Simd, decode_hw));

    // Offsets into `all`: 0 reference, 4 scalar, 8 packed, 12 simd.
    speedupTable("Packed kernel speedup over Scalar (hardwired path)",
                 all, 4, 8, "Scalar", "Packed");
    speedupTable("Simd kernel speedup over Packed (hardwired path)",
                 all, 8, 12, "Packed", "Simd");

    writeJson(json_path, cfg, all);
    return 0;
}
