/**
 * @file
 * Reproduces the paper's Section 2.2 / Section 3 headline economics:
 * the straightforward CMAC hardwiring strawman (~176,000 mm^2, 200+
 * chips, ~$6 B of heterogeneous photomasks) versus the Metal-Embedding
 * Sea-of-Neurons flow (15x density, 112x mask-cost reduction, -86.5%
 * initial tapeout, -92.3% re-spin).
 */

#include <cmath>

#include "bench_util.hh"
#include "econ/nre.hh"
#include "litho/wafer.hh"
#include "model/model_zoo.hh"
#include "phys/area_model.hh"

int
main()
{
    using namespace hnlpu;

    bench::banner("Section 2.2: the economic strawman");

    const auto model = gptOss120b();
    AreaModel area(n5Technology());
    const double params = double(model.totalParams());

    const AreaMm2 strawman_area = area.cmacStrawman(params);
    const auto strawman_chips = static_cast<std::size_t>(
        std::ceil(strawman_area / WaferModel::kReticleLimit));
    MaskStack masks;
    const Dollars strawman_masks = masks.strawmanCost(strawman_chips);

    Table straw({"Quantity", "Measured", "Paper"});
    straw.addRow({"CMAC-grid area", commaString(strawman_area) + " mm^2",
                  "~176,000 mm^2"});
    straw.addRow({"Chips (reticle-limited)",
                  std::to_string(strawman_chips), "200+"});
    straw.addRow({"Heterogeneous mask bill",
                  dollarString(strawman_masks), "over $ 6B"});
    straw.print();

    bench::banner("Section 3: Metal-Embedding savings");

    const AreaMm2 me_area = area.metalEmbedding(params);
    HnlpuCostModel cost(n5Technology(), masks);
    const auto bd = cost.breakdown(model);

    Table save({"Quantity", "Measured", "Paper"});
    save.addRow({"ME weight area (16 chips)",
                 commaString(me_area) + " mm^2", "~9,170 mm^2"});
    save.addRow({"Density gain vs CE grid",
                 ratioString(area.meDensityGain(), 1), "15x"});
    save.addRow({"Area saving vs CE",
                 percentString(1.0 - 1.0 / area.meDensityGain()),
                 "-93.4%"});
    const double mask_reduction =
        strawman_masks / (bd.homogeneousMask + bd.metalEmbeddingMask)
                             .mid();
    save.addRow({"Photomask cost reduction",
                 ratioString(mask_reduction, 0), "112x"});
    const double hetero16 = masks.fullSetPrice.hi * 16.0;
    save.addRow({"Initial tapeout saving vs 16 full sets",
                 percentString(1.0 - masks.seaOfNeuronsCost(16).hi /
                                         hetero16),
                 "-86.5%"});
    save.addRow({"Re-spin saving vs 16 full sets",
                 percentString(1.0 - masks.respinCost(16).hi / hetero16),
                 "-92.3%"});
    save.print();
    return 0;
}
